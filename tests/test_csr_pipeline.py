"""End-to-end CSR pipeline guarantees, threshold calibration, result caching.

The headline acceptance property of the backend-agnostic application layer:
a CSR-backed end-to-end run (``from_graph`` → kernel → ``build_hierarchy`` →
densest / levels / query) never constructs a :class:`NucleusSpace` and never
materialises a tuple-keyed κ dict — asserted here by instrumenting both away.
"""

import pytest

import repro.core.csr as csr_module
from repro.core.csr import (
    AUTO_CSR_THRESHOLD,
    AUTO_CSR_THRESHOLD_ENV,
    CSRSpace,
    MIN_AUTO_CSR_THRESHOLD,
    auto_csr_threshold,
)
from repro.core.decomposition import nucleus_decomposition
from repro.core.densest import best_nucleus
from repro.core.hierarchy import build_hierarchy
from repro.core.levels import degree_levels
from repro.core.peeling import peeling_decomposition
from repro.core.query import estimate_local_indices
from repro.core.result import DecompositionResult
from repro.core.space import NucleusSpace
from repro.graph.csr_graph import HAVE_NUMPY, CliqueArrayView
from repro.graph.generators import powerlaw_cluster_graph
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list, read_edge_list_arrays, write_edge_list


@pytest.fixture
def no_dict_structures(monkeypatch):
    """Forbid NucleusSpace construction and tuple-keyed κ dict building."""

    def no_space(self, *args, **kwargs):
        raise AssertionError("NucleusSpace constructed on the CSR-native path")

    def no_result_dict(self):
        raise AssertionError("tuple-keyed kappa dict built on the CSR-native path")

    def no_space_dict(self, values):
        raise AssertionError("tuple-keyed value dict built on the CSR-native path")

    monkeypatch.setattr(NucleusSpace, "__init__", no_space)
    monkeypatch.setattr(DecompositionResult, "as_dict", no_result_dict)
    monkeypatch.setattr(DecompositionResult, "_mapping", no_result_dict)
    monkeypatch.setattr(CSRSpace, "as_dict", no_space_dict)


class TestNoDictEndToEnd:
    @pytest.mark.parametrize("algorithm", ["and", "snd", "peeling"])
    def test_full_application_pipeline(self, no_dict_structures, algorithm):
        """from_graph → kernel → hierarchy → densest, all without the dict."""
        graph = powerlaw_cluster_graph(80, 4, 0.6, seed=5)
        space = CSRSpace.from_graph(graph, 2, 3)
        result = nucleus_decomposition(space, algorithm=algorithm, backend="csr")
        assert result.operations["backend"] == "csr"

        hierarchy = build_hierarchy(space, result)
        assert len(hierarchy) >= 1
        rows = hierarchy.to_rows()  # vertex materialisation + densities
        assert rows[0]["num_vertices"] >= 1

        nucleus, density = best_nucleus(graph, 2, 3, hierarchy=hierarchy)
        assert nucleus is not None
        assert 0.0 < density <= 1.0

        levels = degree_levels(space)
        assert sum(len(level) for level in levels) == len(space)

    def test_densest_from_graph_without_prebuilt_hierarchy(self, no_dict_structures):
        graph = powerlaw_cluster_graph(60, 4, 0.6, seed=6)
        nucleus, density = best_nucleus(graph, 2, 3, backend="csr")
        assert nucleus is not None
        assert density > 0.0

    def test_query_pipeline_builds_ball_via_from_graph(self, no_dict_structures):
        graph = powerlaw_cluster_graph(60, 4, 0.6, seed=6)
        space = CSRSpace.from_graph(graph, 2, 3)
        query = space.clique_of(0)
        estimate = estimate_local_indices(
            graph, [query], 2, 3, hops=1, backend="csr"
        )
        assert estimate[query] >= 0
        assert estimate.ball_size >= 2

    def test_kappa_readable_by_index_without_dict(self, no_dict_structures):
        space = CSRSpace.from_graph(powerlaw_cluster_graph(60, 4, 0.6, seed=6), 2, 3)
        result = peeling_decomposition(space)
        assert [result.kappa_at(i) for i in range(len(result))] == result.kappa


@pytest.mark.skipif(not HAVE_NUMPY, reason="the array substrate requires numpy")
class TestArrayIngestEndToEnd:
    """Edge-list file → CSRGraph → CSRSpace → DecompositionResult, with the
    dict graph adjacency and every per-clique Python tuple instrumented away:
    the ``backend="csr"`` ingestion pipeline must run to a finished result
    without constructing either, for every r ≤ 3 instance."""

    @pytest.fixture(scope="class")
    def edge_list_path(self, tmp_path_factory):
        graph = powerlaw_cluster_graph(70, 4, 0.6, seed=8)
        path = tmp_path_factory.mktemp("ingest") / "graph.txt"
        write_edge_list(graph, path)
        return path

    @staticmethod
    def _forbid(monkeypatch):
        def no_graph(self, *args, **kwargs):
            raise AssertionError("dict Graph adjacency built on the array path")

        def no_space(self, *args, **kwargs):
            raise AssertionError("NucleusSpace constructed on the array path")

        def no_tuple(self, *args, **kwargs):
            raise AssertionError("per-clique tuple materialised on the array path")

        monkeypatch.setattr(Graph, "__init__", no_graph)
        monkeypatch.setattr(NucleusSpace, "__init__", no_space)
        monkeypatch.setattr(CliqueArrayView, "__getitem__", no_tuple)
        monkeypatch.setattr(CliqueArrayView, "__iter__", no_tuple)
        monkeypatch.setattr(DecompositionResult, "as_dict", no_tuple)
        monkeypatch.setattr(DecompositionResult, "_mapping", no_tuple)
        monkeypatch.setattr(CSRSpace, "as_dict", no_tuple)

    @pytest.mark.parametrize("r,s", [(1, 2), (2, 3), (3, 4)])
    @pytest.mark.parametrize("algorithm", ["and", "snd", "peeling"])
    def test_edge_list_to_result_is_array_native(
        self, edge_list_path, monkeypatch, r, s, algorithm
    ):
        with monkeypatch.context() as patch:
            self._forbid(patch)
            graph = read_edge_list_arrays(edge_list_path)
            result = nucleus_decomposition(
                graph, r, s, algorithm=algorithm, backend="csr"
            )
            assert result.converged
            assert result.operations["backend"] == "csr"
        # instrumentation lifted: κ keyed by clique must match the dict
        # reference pipeline byte for byte
        reference = nucleus_decomposition(
            read_edge_list(edge_list_path), r, s,
            algorithm=algorithm, backend="dict",
        )
        assert dict(zip(result.cliques, result.kappa)) == reference.as_dict()

    def test_auto_backend_on_csr_graph_is_array_native(
        self, edge_list_path, monkeypatch
    ):
        """``backend="auto"`` must not downgrade a CSRGraph source."""
        with monkeypatch.context() as patch:
            self._forbid(patch)
            graph = read_edge_list_arrays(edge_list_path)
            result = nucleus_decomposition(graph, 2, 3, backend="auto")
            assert result.operations["backend"] == "csr"


class TestAutoThresholdCalibration:
    @pytest.fixture
    def fresh_calibration(self, monkeypatch):
        monkeypatch.delenv(AUTO_CSR_THRESHOLD_ENV, raising=False)
        monkeypatch.setattr(csr_module, "_CALIBRATED", None)

    def test_probe_produces_a_clamped_threshold(self, fresh_calibration):
        threshold = auto_csr_threshold()
        assert MIN_AUTO_CSR_THRESHOLD <= threshold <= AUTO_CSR_THRESHOLD

    def test_probe_runs_once_per_process(self, fresh_calibration, monkeypatch):
        calls = []

        def fake_probe():
            calls.append(1)
            return 99

        monkeypatch.setattr(csr_module, "_calibrate_threshold", fake_probe)
        assert auto_csr_threshold() == 99
        assert auto_csr_threshold() == 99
        assert len(calls) == 1

    def test_env_override_wins(self, fresh_calibration, monkeypatch):
        monkeypatch.setenv(AUTO_CSR_THRESHOLD_ENV, "123")
        assert auto_csr_threshold() == 123

    def test_malformed_env_override_falls_back(self, fresh_calibration, monkeypatch):
        monkeypatch.setenv(AUTO_CSR_THRESHOLD_ENV, "not-a-number")
        assert auto_csr_threshold() == AUTO_CSR_THRESHOLD

    def test_probe_failure_falls_back_to_default(self, fresh_calibration, monkeypatch):
        def broken_probe():
            raise RuntimeError("no timers here")

        monkeypatch.setattr(csr_module, "_calibrate_threshold", broken_probe)
        assert auto_csr_threshold() == AUTO_CSR_THRESHOLD

    def test_routing_uses_the_calibrated_value(self, fresh_calibration, monkeypatch):
        monkeypatch.setattr(csr_module, "_CALIBRATED", 10)
        space = NucleusSpace(powerlaw_cluster_graph(30, 3, 0.5, seed=1), 1, 2)
        assert len(space) >= 10
        assert csr_module.resolve_backend("auto", space) == "csr"
        monkeypatch.setattr(csr_module, "_CALIBRATED", 10_000)
        assert csr_module.resolve_backend("auto", space) == "dict"


class TestResultCaching:
    def make_result(self):
        return peeling_decomposition(powerlaw_cluster_graph(40, 3, 0.5, seed=2), 1, 2)

    def test_as_dict_is_memoised(self):
        result = self.make_result()
        first = result.as_dict()
        assert result.as_dict() is first
        assert first == {c: k for c, k in zip(result.cliques, result.kappa)}

    def test_kappa_of_does_not_rebuild_per_call(self, monkeypatch):
        result = self.make_result()
        clique = result.cliques[0]
        expected = result.kappa[0]
        assert result.kappa_of(clique) == expected
        # after the first lookup the mapping exists; further lookups must not
        # reconstruct it
        built = result._by_clique
        assert built is not None
        assert result.kappa_of(clique) == expected
        assert result._by_clique is built

    def test_kappa_at_reads_by_index(self):
        result = self.make_result()
        assert result.kappa_at(3) == result.kappa[3]
        assert result._by_clique is None  # index reads never build the dict
