"""Tests for the H operator (Definition 5) and its helpers."""

import pytest

from repro.core.hindex import h_index, h_index_sorted, sustains_h


class TestHIndex:
    @pytest.mark.parametrize(
        "values,expected",
        [
            ([], 0),
            ([0], 0),
            ([1], 1),
            ([5], 1),
            ([2, 3], 2),
            ([1, 2], 1),
            ([2, 2, 2], 2),
            ([4, 3, 3, 2], 3),       # the paper's k-truss example for edge ab
            ([2, 3], 2),             # the paper's vertex-a example, τ1(a)=2
            ([1, 2], 1),             # the paper's vertex-a example, τ2(a)=1
            ([10, 10, 10, 10], 4),
            ([0, 0, 0], 0),
            ([1, 1, 1, 1, 1], 1),
            ([5, 4, 3, 2, 1], 3),
        ],
    )
    def test_known_values(self, values, expected):
        assert h_index(values) == expected

    def test_matches_sorted_reference(self):
        import random

        rng = random.Random(1)
        for _ in range(200):
            values = [rng.randint(0, 20) for _ in range(rng.randint(0, 30))]
            assert h_index(values) == h_index_sorted(values)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            h_index([1, -1])

    def test_order_independent(self):
        assert h_index([3, 1, 4, 1, 5]) == h_index([5, 4, 3, 1, 1])

    def test_upper_bounds(self):
        values = [7, 9, 3, 3, 2]
        h = h_index(values)
        assert h <= len(values)
        assert h <= max(values)


class TestSustainsH:
    def test_zero_always_sustained(self):
        assert sustains_h([], 0)
        assert sustains_h([0, 0], 0)

    def test_sustained(self):
        assert sustains_h([3, 3, 3], 3)
        assert sustains_h([5, 5, 1], 2)

    def test_not_sustained(self):
        assert not sustains_h([1, 1, 1], 2)
        assert not sustains_h([], 1)

    def test_consistency_with_h_index(self):
        import random

        rng = random.Random(2)
        for _ in range(200):
            values = [rng.randint(0, 15) for _ in range(rng.randint(0, 25))]
            h = h_index(values)
            assert sustains_h(values, h)
            assert not sustains_h(values, h + 1)
