"""Tests for the DecompositionResult container."""

import pytest

from repro.core.decomposition import core_decomposition
from repro.core.result import DecompositionResult, IterationStats
from repro.core.space import NucleusSpace


@pytest.fixture
def sample_result(two_clique_bridge_graph):
    return core_decomposition(two_clique_bridge_graph, algorithm="peeling")


class TestBasics:
    def test_len(self, sample_result, two_clique_bridge_graph):
        assert len(sample_result) == two_clique_bridge_graph.number_of_vertices()

    def test_as_dict_and_kappa_of(self, sample_result):
        mapping = sample_result.as_dict()
        clique = sample_result.cliques[0]
        assert sample_result.kappa_of(clique) == mapping[clique]

    def test_max_kappa(self, sample_result):
        assert sample_result.max_kappa() == 4  # two K5s -> core number 4

    def test_histogram_sums_to_total(self, sample_result):
        hist = sample_result.kappa_histogram()
        assert sum(hist.values()) == len(sample_result)
        assert list(hist) == sorted(hist)

    def test_vertices_with_kappa_at_least(self, sample_result):
        top = sample_result.vertices_with_kappa_at_least(4)
        assert len(top) == 10  # both K5s

    def test_summary_mentions_algorithm(self, sample_result):
        assert "peeling" in sample_result.summary()
        assert "(1,2)" in sample_result.summary()

    def test_empty_result_max_kappa(self):
        result = DecompositionResult(r=1, s=2, algorithm="peeling", kappa=[], cliques=[])
        assert result.max_kappa() == 0
        assert result.kappa_histogram() == {}


class TestFromSpace:
    def test_alignment(self, two_clique_bridge_graph):
        space = NucleusSpace(two_clique_bridge_graph, 1, 2)
        result = DecompositionResult.from_space(space, "test", space.s_degrees())
        assert result.cliques == space.cliques
        assert result.r == 1 and result.s == 2


class TestIterationStats:
    def test_as_row(self):
        stat = IterationStats(
            iteration=3, updated=5, processed=10, skipped=2, max_change=1, converged_count=7
        )
        assert stat.as_row() == (3, 5, 10, 2, 1, 7)
