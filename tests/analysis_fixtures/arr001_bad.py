"""ARR001 bad: allocators guessing their dtype (analysed under core/)."""

import numpy as np


def build(n):
    offsets = np.zeros(n + 1)
    ids = np.arange(n)
    table = np.array([[0, 1], [1, 0]])
    return offsets, ids, table
