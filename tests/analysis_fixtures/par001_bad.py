"""PAR001 bad: unpicklable values routed into worker payloads."""

from repro.parallel.procpool import JobSpec, WorkerSpec


def dispatch(ctx, conn, run, path):
    spec = WorkerSpec(
        names={},
        n=1,
        stride=1,
        bounds=(0, 1),
        wid=0,
        barrier_timeout=1.0,
        faults=(lambda wid: wid,),
    )
    conn.send({"handle": open(path)})
    proc = ctx.Process(target=run, args=(ctx.Lock(),))
    job = JobSpec(kind="snd", faults=(ctx.memmap(path),))
    return spec, proc, job
