"""ARR002 good: the persisted tier stays int64 end to end (store/)."""

import numpy as np


def persist(values, raw):
    wide = np.asarray(values, dtype=np.int64)
    zeros = np.zeros(len(values), dtype="q")
    decoded = np.frombuffer(raw, dtype="<i8")
    # no dtype at all is ARR001's business, not ARR002's
    view = np.asarray(values)
    return wide, zeros, decoded, view
