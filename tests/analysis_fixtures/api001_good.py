"""API001 good: routing parameters reach nucleus_decomposition."""

from repro.core.decomposition import nucleus_decomposition


def run_report(graph, r, s, backend="auto", parallel=None):
    return nucleus_decomposition(graph, r, s, backend=backend, parallel=parallel)


def run_forwarded(graph, r, s, **options):
    return nucleus_decomposition(graph, r, s, **options)


def run_splatted(graph, r, s, backend="auto", parallel=None, **extra):
    options = {"backend": backend, "parallel": parallel}
    return nucleus_decomposition(graph, r, s, **options)


def _private_helper(graph, r, s, backend="auto"):
    # private helpers are outside the public-surface contract
    return nucleus_decomposition(graph, r, s)


def no_routing(graph, r, s):
    return nucleus_decomposition(graph, r, s)
