"""KER001 bad: interpreted per-element Python inside a @kernel function."""

from repro.core.kernels import kernel


@kernel
def rotten_sweep(tau, out, lo, hi):
    values = tau.tolist()
    for i in range(lo, hi):
        out[i] = values[i]
    lookup = dict()
    squares = {v * v for v in values}
    return lookup, squares
