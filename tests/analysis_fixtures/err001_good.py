"""ERR001 good: the taxonomy is raised, exceptions are caught narrowly."""

from repro.resilience.errors import StoreFormatError


def load(path):
    if path is None:
        raise StoreFormatError("no path given")
    try:
        return path.read_text()
    except OSError as exc:
        raise StoreFormatError(f"unreadable: {exc}") from exc
