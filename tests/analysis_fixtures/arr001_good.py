"""ARR001 good: every allocator names its dtype (analysed under core/)."""

import numpy as np


def build(n, values):
    offsets = np.zeros(n + 1, dtype=np.int64)
    ids = np.arange(n, dtype=np.int64)
    table = np.array([[0, 1], [1, 0]], dtype=np.int64)
    # asarray reinterprets, it does not allocate: ARR001 leaves it alone
    view = np.asarray(values)
    return offsets, ids, table, view
