"""ARR002 bad: explicit non-int64 dtypes in the persisted tier (store/)."""

import numpy as np


def persist(values, raw):
    narrow = np.asarray(values, dtype=np.int32)
    floats = np.zeros(len(values), dtype=np.float64)
    decoded = np.frombuffer(raw, dtype="<i4")
    return narrow, floats, decoded
