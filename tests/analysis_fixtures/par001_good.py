"""PAR001 good: payloads are flat picklable data; handles stay parent-side."""

from repro.parallel.procpool import JobSpec, WorkerSpec


def dispatch(ctx, conn, run, names):
    spec = WorkerSpec(
        names=names,
        n=4,
        stride=2,
        bounds=(0, 4),
        wid=0,
        barrier_timeout=600.0,
    )
    job = JobSpec(kind="snd", gen=1)
    conn.send(job)
    proc = ctx.Process(target=run, args=(spec,), daemon=True)
    lock = ctx.Lock()  # parent-side only: never enters a payload
    return proc, lock
