"""API001 bad: routing parameters accepted, then silently dropped."""

from repro.core.decomposition import nucleus_decomposition


def run_report(graph, r, s, backend="auto", parallel=None):
    return nucleus_decomposition(graph, r, s)


def run_half_wired(graph, r, s, backend="auto", parallel=None):
    return nucleus_decomposition(graph, r, s, backend=backend)
