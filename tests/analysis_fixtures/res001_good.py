"""RES001 good: every create=True is guarded or handed to a cleanup owner."""

from multiprocessing import shared_memory


def guarded(size):
    try:
        shm = shared_memory.SharedMemory(create=True, size=size)
        return bytes(shm.buf[:8])
    finally:
        shm.close()
        shm.unlink()


class Arena:
    def __init__(self):
        self._segments = []

    def create(self, size):
        shm = shared_memory.SharedMemory(create=True, size=size)
        self._segments.append(shm)
        return shm


def adopted(arena, size):
    return arena.adopt(shared_memory.SharedMemory(create=True, size=size))


def attach_only(name):
    # attaching (no create=True) does not own the segment: never flagged
    return shared_memory.SharedMemory(name=name)
