"""ERR001 bad: anonymous raises and a bare except in a library path."""


def load(path):
    if path is None:
        raise RuntimeError("no path given")
    try:
        return path.read_text()
    except:
        raise Exception("unreadable")
