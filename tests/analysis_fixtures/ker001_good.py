"""KER001 good: the kernel stays vectorised; helpers are unconstrained."""

import numpy as np

from repro.core.kernels import kernel


@kernel
def clean_sweep(prev, nxt, lo, hi):
    nxt[lo:hi] = np.minimum(prev[lo:hi], nxt[lo:hi])
    return int((nxt != prev).sum())


def plain_helper(values):
    # not @kernel: interpreted Python is perfectly fine here
    out = []
    for i in range(len(values)):
        out.append(values[i])
    return out
