"""RES001 bad: a created segment with no release on the failure paths."""

from multiprocessing import shared_memory


def leak_on_error(size):
    shm = shared_memory.SharedMemory(create=True, size=size)
    header = bytes(shm.buf[:8])  # any raise here orphans the segment
    return shm.name, header
