"""Tests for the peeling baseline (Algorithm 1)."""

import networkx as nx
import pytest

from repro.core.peeling import core_numbers_bz, peel_order, peeling_decomposition
from repro.core.space import NucleusSpace
from repro.graph.generators import complete_graph, ring_of_cliques
from repro.graph.graph import Graph


class TestCoreDecomposition:
    def test_paper_example(self, paper_core_graph, paper_core_numbers):
        result = peeling_decomposition(paper_core_graph, 1, 2)
        assert {c[0]: k for c, k in zip(result.cliques, result.kappa)} == paper_core_numbers

    def test_matches_networkx(self, medium_powerlaw_graph):
        result = peeling_decomposition(medium_powerlaw_graph, 1, 2)
        mine = {c[0]: k for c, k in zip(result.cliques, result.kappa)}
        assert mine == nx.core_number(medium_powerlaw_graph.to_networkx())

    def test_bz_direct_matches_space_based(self, medium_powerlaw_graph):
        direct = core_numbers_bz(medium_powerlaw_graph)
        result = peeling_decomposition(medium_powerlaw_graph, 1, 2)
        assert direct == {c[0]: k for c, k in zip(result.cliques, result.kappa)}

    def test_complete_graph(self):
        result = peeling_decomposition(complete_graph(5), 1, 2)
        assert set(result.kappa) == {4}

    def test_empty_graph(self):
        result = peeling_decomposition(Graph(), 1, 2)
        assert result.kappa == []
        assert result.converged

    def test_isolated_vertices_have_zero_core(self):
        g = Graph(edges=[(0, 1)], vertices=[9])
        result = peeling_decomposition(g, 1, 2)
        assert result.as_dict()[(9,)] == 0


class TestTrussDecomposition:
    def test_single_triangle(self, triangle_graph):
        result = peeling_decomposition(triangle_graph, 2, 3)
        assert set(result.kappa) == {1}

    def test_complete_graph(self):
        # in K5 every edge is in 3 triangles and the whole graph is a 3-truss
        result = peeling_decomposition(complete_graph(5), 2, 3)
        assert set(result.kappa) == {3}

    def test_ring_of_cliques_bridges_are_zero(self):
        # four cliques: the bridge edges form a 4-cycle, so they sit in no triangle
        g = ring_of_cliques(4, 4)
        result = peeling_decomposition(g, 2, 3)
        kappa = result.as_dict()
        bridges = [e for e, k in kappa.items() if k == 0]
        assert len(bridges) == 4
        # clique edges all have truss number 2 (each edge of a K4 is in 2 triangles)
        assert all(k == 2 for e, k in kappa.items() if k != 0)

    def test_three_ring_bridges_form_a_one_truss(self):
        # with three cliques the bridges themselves form a triangle,
        # so every bridge edge has truss number exactly 1
        g = ring_of_cliques(3, 4)
        kappa = peeling_decomposition(g, 2, 3).as_dict()
        bases = {0, 4, 8}
        bridge_values = [k for e, k in kappa.items() if set(e) <= bases]
        assert bridge_values == [1, 1, 1]

    def test_matches_networkx_ktruss_membership(self, small_powerlaw_graph):
        """An edge with truss number >= k must be in networkx's k_truss(k+2) subgraph
        (networkx uses the 'k-2 triangles' convention)."""
        result = peeling_decomposition(small_powerlaw_graph, 2, 3)
        kappa = result.as_dict()
        max_k = max(kappa.values())
        for k in range(1, max_k + 1):
            nx_truss = nx.k_truss(small_powerlaw_graph.to_networkx(), k + 2)
            nx_edges = {tuple(sorted(e)) for e in nx_truss.edges()}
            mine = {e for e, val in kappa.items() if val >= k}
            assert mine == nx_edges


class TestThreeFourDecomposition:
    def test_complete_graph(self):
        # in K6 every triangle is in 3 four-cliques; whole graph is the 3-(3,4) nucleus
        result = peeling_decomposition(complete_graph(6), 3, 4)
        assert set(result.kappa) == {3}

    def test_planted_clique_dominates(self, planted_graph):
        result = peeling_decomposition(planted_graph, 3, 4)
        kappa = result.as_dict()
        # triangles inside the planted 12-clique have the maximum kappa
        planted = {tri for tri in kappa if set(tri) <= set(range(12))}
        max_kappa = max(kappa.values())
        assert all(kappa[tri] == max_kappa for tri in planted)
        # a triangle fully inside the planted clique is in at least 9 4-cliques there
        assert max_kappa >= 9


class TestPeelOrder:
    def test_is_permutation(self, small_powerlaw_graph):
        space = NucleusSpace(small_powerlaw_graph, 1, 2)
        order = peel_order(space)
        assert sorted(order) == list(range(len(space)))

    def test_kappa_non_decreasing_along_order(self, small_powerlaw_graph):
        space = NucleusSpace(small_powerlaw_graph, 1, 2)
        kappa = peeling_decomposition(space).kappa
        order = peel_order(space)
        values = [kappa[i] for i in order]
        assert values == sorted(values)


class TestArguments:
    def test_graph_without_rs_raises(self, triangle_graph):
        with pytest.raises(ValueError):
            peeling_decomposition(triangle_graph)

    def test_operations_recorded(self, small_powerlaw_graph):
        result = peeling_decomposition(small_powerlaw_graph, 1, 2)
        assert result.operations["cliques_processed"] == len(result.kappa)
        assert result.operations["degree_decrements"] >= 0
