"""Tests for query-driven local estimation."""

import pytest

from repro.core.peeling import peeling_decomposition
from repro.core.query import estimate_local_indices, query_accuracy
from repro.graph.generators import complete_graph
from repro.graph.graph import Graph


class TestBasics:
    def test_single_vertex_query_full_radius_is_exact(self, small_powerlaw_graph):
        exact = peeling_decomposition(small_powerlaw_graph, 1, 2).as_dict()
        diameter_ish = small_powerlaw_graph.number_of_vertices()
        queries = [(v,) for v in list(small_powerlaw_graph.vertices())[:5]]
        estimates = estimate_local_indices(
            small_powerlaw_graph, queries, 1, 2, hops=diameter_ish
        )
        for q in queries:
            assert estimates[q] == exact[q]

    def test_estimates_monotone_unreliable_but_bounded_by_degree(self, small_powerlaw_graph):
        queries = [(v,) for v in list(small_powerlaw_graph.vertices())[:5]]
        estimates = estimate_local_indices(small_powerlaw_graph, queries, 1, 2, hops=1)
        for (v,), value in estimates.items():
            assert 0 <= value <= small_powerlaw_graph.degree(v)

    def test_metadata_attached(self, small_powerlaw_graph):
        estimates = estimate_local_indices(
            small_powerlaw_graph, [(0,)], 1, 2, hops=1
        )
        assert estimates.ball_size >= 1
        assert estimates.subgraph_edges >= 0
        assert estimates.iterations >= 0

    def test_hops_zero_vertex_query(self, triangle_graph):
        estimates = estimate_local_indices(triangle_graph, [(0,)], 1, 2, hops=0)
        # only the query vertex is in the ball, so it sees no edges at all
        assert estimates[(0,)] == 0

    def test_larger_radius_never_lowers_accuracy_on_clique(self):
        g = complete_graph(8)
        exact = peeling_decomposition(g, 1, 2).as_dict()
        for hops in (1, 2, 3):
            estimates = estimate_local_indices(g, [(0,)], 1, 2, hops=hops)
            assert estimates[(0,)] == exact[(0,)]


class TestEdgeQueries:
    def test_truss_queries(self, small_powerlaw_graph):
        exact = peeling_decomposition(small_powerlaw_graph, 2, 3).as_dict()
        queries = list(exact)[:5]
        estimates = estimate_local_indices(
            small_powerlaw_graph, queries, 2, 3, hops=small_powerlaw_graph.number_of_vertices()
        )
        for q in queries:
            assert estimates[q] == exact[q]

    def test_snd_backend(self, triangle_graph):
        estimates = estimate_local_indices(
            triangle_graph, [(0, 1)], 2, 3, hops=2, algorithm="snd"
        )
        assert estimates[(0, 1)] == 1


class TestValidation:
    def test_wrong_query_size(self, triangle_graph):
        with pytest.raises(ValueError):
            estimate_local_indices(triangle_graph, [(0, 1)], 1, 2)

    def test_query_not_a_clique(self):
        g = Graph([(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            estimate_local_indices(g, [(0, 2)], 2, 3)

    def test_unknown_vertex(self, triangle_graph):
        with pytest.raises(ValueError):
            estimate_local_indices(triangle_graph, [(99,)], 1, 2)

    def test_unknown_algorithm(self, triangle_graph):
        with pytest.raises(ValueError):
            estimate_local_indices(triangle_graph, [(0,)], 1, 2, algorithm="bogus")


class TestQueryAccuracy:
    def test_perfect(self):
        assert query_accuracy({("a",): 2}, {("a",): 2}) == (1.0, 0.0)

    def test_empty(self):
        assert query_accuracy({}, {}) == (1.0, 0.0)

    def test_mixed(self):
        frac, err = query_accuracy({("a",): 2, ("b",): 5}, {("a",): 2, ("b",): 3})
        assert frac == 0.5
        assert err == 1.0
