"""Tests for triangle enumeration, degeneracy ordering and clustering."""

import networkx as nx
import pytest

from repro.graph.generators import complete_graph
from repro.graph.graph import Graph, canonical_edge
from repro.graph.triangles import (
    count_triangles,
    degeneracy_ordering,
    edge_triangle_counts,
    enumerate_triangles,
    local_clustering_coefficient,
    vertex_triangle_counts,
)


class TestDegeneracyOrdering:
    def test_covers_all_vertices_once(self, small_powerlaw_graph):
        order = degeneracy_ordering(small_powerlaw_graph)
        assert sorted(order, key=repr) == sorted(small_powerlaw_graph.vertices(), key=repr)

    def test_empty_graph(self):
        assert degeneracy_ordering(Graph()) == []

    def test_degeneracy_matches_networkx_core_number(self, small_powerlaw_graph):
        """The max core number equals the graph degeneracy; the smallest-last
        ordering must realise it: every vertex has at most `degeneracy` later
        neighbours."""
        order = degeneracy_ordering(small_powerlaw_graph)
        rank = {v: i for i, v in enumerate(order)}
        degeneracy = max(
            sum(1 for nbr in small_powerlaw_graph.neighbors(v) if rank[nbr] > rank[v])
            for v in order
        )
        expected = max(nx.core_number(small_powerlaw_graph.to_networkx()).values())
        assert degeneracy == expected


class TestTriangleEnumeration:
    def test_single_triangle(self, triangle_graph):
        triangles = list(enumerate_triangles(triangle_graph))
        assert len(triangles) == 1
        assert sorted(triangles[0]) == [0, 1, 2]

    def test_no_triangles_in_a_path(self):
        g = Graph([(0, 1), (1, 2), (2, 3)])
        assert count_triangles(g) == 0

    def test_complete_graph_count(self):
        # K6 has C(6,3) = 20 triangles
        assert count_triangles(complete_graph(6)) == 20

    def test_matches_networkx(self, medium_powerlaw_graph):
        expected = sum(nx.triangles(medium_powerlaw_graph.to_networkx()).values()) // 3
        assert count_triangles(medium_powerlaw_graph) == expected

    def test_each_triangle_reported_once(self, small_powerlaw_graph):
        seen = set()
        for tri in enumerate_triangles(small_powerlaw_graph):
            key = tuple(sorted(tri))
            assert key not in seen
            seen.add(key)


class TestEdgeTriangleCounts:
    def test_triangle_graph(self, triangle_graph):
        counts = edge_triangle_counts(triangle_graph)
        assert set(counts.values()) == {1}
        assert len(counts) == 3

    def test_every_edge_present_even_with_zero(self):
        g = Graph([(0, 1), (1, 2), (0, 2), (2, 3)])
        counts = edge_triangle_counts(g)
        assert counts[canonical_edge(2, 3)] == 0
        assert counts[canonical_edge(0, 1)] == 1

    def test_sum_is_three_times_triangle_count(self, small_powerlaw_graph):
        counts = edge_triangle_counts(small_powerlaw_graph)
        assert sum(counts.values()) == 3 * count_triangles(small_powerlaw_graph)


class TestVertexTriangleCounts:
    def test_matches_networkx(self, small_powerlaw_graph):
        expected = nx.triangles(small_powerlaw_graph.to_networkx())
        assert vertex_triangle_counts(small_powerlaw_graph) == expected


class TestClusteringCoefficient:
    def test_triangle_vertex(self, triangle_graph):
        assert local_clustering_coefficient(triangle_graph, 0) == pytest.approx(1.0)

    def test_low_degree_vertex(self):
        g = Graph([(0, 1)])
        assert local_clustering_coefficient(g, 0) == 0.0

    def test_matches_networkx(self, small_powerlaw_graph):
        nxg = small_powerlaw_graph.to_networkx()
        expected = nx.clustering(nxg)
        for v in list(small_powerlaw_graph.vertices())[:20]:
            assert local_clustering_coefficient(small_powerlaw_graph, v) == pytest.approx(
                expected[v]
            )
