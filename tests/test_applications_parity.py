"""Property tests: the application layer agrees across backends.

The hierarchy, densest-subgraph, degree-level and accuracy-metric pipelines
all run natively on either space representation; these tests assert, on
random graphs and on the degenerate corners (empty graph, zero s-cliques,
single nucleus), that the dict-backed and CSR-backed runs produce the same
forest shape, the same nuclei member sets, the same density metrics and the
same level structure.
"""

import pytest

from repro.core.csr import CSRSpace
from repro.core.densest import best_nucleus, max_core_subgraph
from repro.core.hierarchy import build_hierarchy
from repro.core.levels import (
    convergence_upper_bound,
    degree_levels,
    level_of_each_clique,
)
from repro.core.metrics import accuracy_report, accuracy_report_from_results
from repro.core.peeling import peeling_decomposition
from repro.core.snd import snd_decomposition
from repro.core.space import NucleusSpace
from repro.graph.generators import (
    complete_graph,
    planted_clique_graph,
    powerlaw_cluster_graph,
    ring_of_cliques,
)
from repro.graph.graph import Graph

INSTANCES = [(1, 2), (2, 3), (3, 4)]


def random_graphs():
    """Random + structured graphs small enough for the (3, 4) instance."""
    return [
        powerlaw_cluster_graph(50, 4, 0.6, seed=7),
        powerlaw_cluster_graph(40, 5, 0.8, seed=11),
        planted_clique_graph(40, 8, 0.12, seed=3),
        ring_of_cliques(4, 5),
    ]


def degenerate_graphs():
    return [
        Graph(),                                 # empty space
        Graph([(0, 1), (2, 3)]),                 # zero s-cliques for s >= 3
        Graph([(0, i) for i in range(1, 7)]),    # star: triangle-free
        complete_graph(6),                       # a single nucleus
    ]


def both_spaces(graph, r, s):
    return NucleusSpace(graph, r, s), CSRSpace.from_graph(graph, r, s)


def forest_shape(hierarchy):
    """Everything that defines the forest, in a comparable form."""
    return [
        (
            n.node_id,
            n.k_low,
            n.k_high,
            tuple(n.clique_indices),
            frozenset(n.vertices),
            n.parent,
            tuple(n.children),
        )
        for n in hierarchy.nodes
    ]


class TestHierarchyParity:
    @pytest.mark.parametrize("rs", INSTANCES)
    def test_same_forest_on_random_graphs(self, rs):
        for graph in random_graphs():
            dict_space, csr_space = both_spaces(graph, *rs)
            kappa = peeling_decomposition(dict_space, backend="dict").kappa
            dict_h = build_hierarchy(dict_space, kappa)
            csr_h = build_hierarchy(csr_space, kappa)
            assert forest_shape(dict_h) == forest_shape(csr_h)
            # density metrics come out identically (same vertices, same graph)
            assert dict_h.to_rows() == csr_h.to_rows()

    @pytest.mark.parametrize("rs", INSTANCES)
    def test_same_forest_on_degenerate_graphs(self, rs):
        for graph in degenerate_graphs():
            dict_space, csr_space = both_spaces(graph, *rs)
            kappa = peeling_decomposition(dict_space, backend="dict").kappa
            dict_h = build_hierarchy(dict_space, kappa)
            csr_h = build_hierarchy(csr_space, kappa)
            assert forest_shape(dict_h) == forest_shape(csr_h)

    def test_empty_graph_yields_empty_forest(self):
        for space in both_spaces(Graph(), 2, 3):
            hierarchy = build_hierarchy(space, [])
            assert len(hierarchy) == 0
            assert hierarchy.roots() == []
            assert hierarchy.max_k() == 0

    def test_zero_s_cliques_give_singleton_nuclei(self):
        """A triangle-free graph at (2, 3): every edge has κ = 0 and no
        S-connection, so the forest is one singleton root per edge."""
        star = Graph([(0, i) for i in range(1, 5)])
        for space in both_spaces(star, 2, 3):
            kappa = peeling_decomposition(space).kappa
            hierarchy = build_hierarchy(space, kappa)
            assert len(hierarchy) == 4
            assert all(n.parent is None for n in hierarchy.nodes)
            assert all(len(n.clique_indices) == 1 for n in hierarchy.nodes)

    def test_single_nucleus_complete_graph(self):
        for space in both_spaces(complete_graph(6), 1, 2):
            kappa = peeling_decomposition(space).kappa
            hierarchy = build_hierarchy(space, kappa)
            assert len(hierarchy) == 1
            node = hierarchy.nodes[0]
            assert node.k_low == 0 and node.k_high == 5
            assert node.vertices == set(range(6))

    def test_vertices_materialise_lazily(self):
        space = CSRSpace.from_graph(powerlaw_cluster_graph(40, 4, 0.6, seed=7), 2, 3)
        kappa = peeling_decomposition(space).kappa
        hierarchy = build_hierarchy(space, kappa)
        assert all(n._vertices is None for n in hierarchy.nodes)
        total = set()
        for n in hierarchy.roots():
            total |= n.vertices
        assert total  # materialisation on demand still works


class TestDensestParity:
    def test_best_nucleus_backends_agree(self):
        for graph in random_graphs():
            dict_best, dict_density = best_nucleus(graph, 2, 3, backend="dict")
            csr_best, csr_density = best_nucleus(graph, 2, 3, backend="csr")
            assert dict_density == pytest.approx(csr_density)
            assert (dict_best is None) == (csr_best is None)
            if dict_best is not None:
                assert dict_best.vertices == csr_best.vertices
                assert dict_best.k == csr_best.k

    def test_best_nucleus_degenerate(self):
        for graph in degenerate_graphs():
            for backend in ("dict", "csr"):
                nucleus, density = best_nucleus(graph, 2, 3, backend=backend)
                if graph.number_of_edges() == 0:
                    assert nucleus is None and density == 0.0

    def test_max_core_backends_agree(self):
        for graph in random_graphs():
            dict_top, dict_density = max_core_subgraph(graph, backend="dict")
            csr_top, csr_density = max_core_subgraph(graph, backend="csr")
            assert dict_top == csr_top
            assert dict_density == pytest.approx(csr_density)


class TestLevelsParity:
    @pytest.mark.parametrize("rs", INSTANCES)
    def test_degree_levels_backends_agree(self, rs):
        for graph in random_graphs() + degenerate_graphs():
            dict_space, csr_space = both_spaces(graph, *rs)
            dict_levels = degree_levels(dict_space)
            csr_levels = degree_levels(csr_space)
            assert dict_levels == csr_levels
            assert level_of_each_clique(dict_space) == level_of_each_clique(csr_space)
            assert convergence_upper_bound(dict_space) == convergence_upper_bound(
                csr_space
            )

    def test_graph_source_backend_routing(self):
        graph = powerlaw_cluster_graph(50, 4, 0.6, seed=7)
        assert degree_levels(graph, 2, 3, backend="dict") == degree_levels(
            graph, 2, 3, backend="csr"
        )


class TestMetricsParity:
    def test_results_from_different_backends_are_comparable(self):
        graph = powerlaw_cluster_graph(50, 4, 0.6, seed=7)
        dict_space, csr_space = both_spaces(graph, 2, 3)
        exact = peeling_decomposition(dict_space, backend="dict")
        estimate = snd_decomposition(csr_space, max_iterations=2)
        report = accuracy_report_from_results(estimate, exact)
        assert report == accuracy_report(estimate.kappa, exact.kappa)

    def test_incomparable_results_raise(self):
        graph = powerlaw_cluster_graph(30, 3, 0.5, seed=1)
        core = peeling_decomposition(graph, 1, 2)
        truss = peeling_decomposition(graph, 2, 3)
        with pytest.raises(ValueError, match="instances"):
            accuracy_report_from_results(core, truss)
