"""End-to-end integration tests across modules.

These mirror how a downstream user would combine the pieces: build or load a
graph, run a decomposition, extract the hierarchy, estimate a handful of
queries, and compare against the exact answer.
"""

from repro import (
    Graph,
    and_decomposition,
    build_hierarchy,
    core_decomposition,
    estimate_local_indices,
    nucleus_decomposition,
    peeling_decomposition,
    snd_decomposition,
    truss_decomposition,
)
from repro.core.metrics import accuracy_report
from repro.core.space import NucleusSpace
from repro.datasets.registry import load_dataset
from repro.graph.generators import hierarchical_community_graph
from repro.graph.io import read_edge_list, write_edge_list


class TestPublicApiSurface:
    def test_top_level_imports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2


class TestFullPipeline:
    def test_io_decompose_hierarchy_roundtrip(self, tmp_path):
        graph = load_dataset("toy")
        path = tmp_path / "toy.txt"
        write_edge_list(graph, path)
        reloaded = read_edge_list(path)
        assert reloaded == graph

        space = NucleusSpace(reloaded, 2, 3)
        exact = peeling_decomposition(space)
        local = and_decomposition(space)
        assert local.kappa == exact.kappa

        hierarchy = build_hierarchy(space, local)
        # six K5s in a ring: six top trusses
        top = hierarchy.nuclei_at(hierarchy.max_k())
        assert len(top) == 6

    def test_hierarchical_communities_are_recovered(self):
        """On a nested-community benchmark the truss hierarchy recovers the
        planted communities as its dense leaves — the citation-network use
        case the paper motivates.  (The k-core hierarchy cannot separate
        equal-density communities joined by a single edge, which is exactly
        why the paper advocates the triangle-connected decompositions.)"""
        graph = hierarchical_community_graph(
            levels=2, branching=3, leaf_size=8, p_intra=0.9, p_decay=0.05, seed=21
        )
        result = truss_decomposition(graph, algorithm="and")
        space = NucleusSpace(graph, 2, 3)
        hierarchy = build_hierarchy(space, result.kappa)
        assert len(hierarchy.roots()) >= 1
        deepest = max(hierarchy.depth_of(n.node_id) for n in hierarchy.nodes)
        assert deepest >= 1
        communities = [set(range(i * 8, (i + 1) * 8)) for i in range(3)]
        dense_leaves = [n for n in hierarchy.leaves() if n.k_high >= 2]
        assert len(dense_leaves) >= 3
        for leaf in dense_leaves:
            assert any(leaf.vertices <= community for community in communities)

    def test_partial_run_then_refine(self):
        """A capped run can be 'continued' by rerunning with more iterations;
        accuracy improves monotonically (the trade-off the paper exploits)."""
        graph = load_dataset("sw")
        space = NucleusSpace(graph, 2, 3)
        exact = peeling_decomposition(space).kappa
        reports = []
        for cap in (1, 3, 10):
            partial = snd_decomposition(space, max_iterations=cap)
            reports.append(accuracy_report(partial.kappa, exact))
        errors = [r["mean_absolute_error"] for r in reports]
        assert errors[2] <= errors[1] <= errors[0]

    def test_query_agrees_with_global_on_moderate_radius(self):
        graph = load_dataset("toy")
        exact = core_decomposition(graph, algorithm="peeling").as_dict()
        queries = [(v,) for v in list(graph.vertices())[:8]]
        estimates = estimate_local_indices(graph, queries, 1, 2, hops=2)
        # a 2-hop ball around any vertex of a K5-ring covers its whole clique,
        # so the core estimates are exact
        for q in queries:
            assert estimates[q] == exact[q]

    def test_all_three_instances_on_one_graph(self):
        graph = load_dataset("toy")
        for r, s in ((1, 2), (2, 3), (3, 4)):
            exact = nucleus_decomposition(graph, r, s, algorithm="peeling")
            local = nucleus_decomposition(graph, r, s, algorithm="and")
            assert local.kappa == exact.kappa

    def test_string_vertices_work_end_to_end(self):
        graph = Graph(
            [
                ("alice", "bob"),
                ("bob", "carol"),
                ("carol", "alice"),
                ("carol", "dave"),
            ]
        )
        result = truss_decomposition(graph, algorithm="snd")
        assert result.as_dict()[("alice", "bob")] == 1
        assert result.as_dict()[("carol", "dave")] == 0
