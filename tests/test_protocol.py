"""Tests for the space protocol shared by the dict and CSR representations.

The application layer (hierarchy, densest, levels, query) is written against
:class:`repro.core.protocol.SpaceLike`; these tests pin the conformance of
both concrete space classes and the cross-representation agreement of every
protocol operation.
"""

import pytest

from repro.core.csr import CSRSpace
from repro.core.protocol import SpaceLike, find_index, space_graph, vertices_of
from repro.core.space import NucleusSpace
from repro.graph.generators import (
    complete_graph,
    powerlaw_cluster_graph,
    ring_of_cliques,
)
from repro.graph.graph import Graph

INSTANCES = [(1, 2), (2, 3), (3, 4)]


def _graphs():
    return [
        powerlaw_cluster_graph(40, 4, 0.6, seed=1),
        ring_of_cliques(3, 5),
        complete_graph(6),
    ]


class TestConformance:
    @pytest.mark.parametrize("rs", INSTANCES)
    def test_both_space_classes_satisfy_the_protocol(self, rs):
        graph = ring_of_cliques(3, 4)
        dict_space = NucleusSpace(graph, *rs)
        csr_space = CSRSpace.from_graph(graph, *rs)
        assert isinstance(dict_space, SpaceLike)
        assert isinstance(csr_space, SpaceLike)

    def test_space_graph_resolution(self):
        graph = ring_of_cliques(3, 4)
        dict_space = NucleusSpace(graph, 1, 2)
        assert space_graph(dict_space) is graph
        assert space_graph(CSRSpace.from_graph(graph, 1, 2)) is graph
        assert space_graph(dict_space.to_csr()) is graph

    def test_graph_reference_not_pickled(self):
        import pickle

        csr = CSRSpace.from_graph(ring_of_cliques(3, 4), 2, 3)
        clone = pickle.loads(pickle.dumps(csr))
        assert space_graph(clone) is None
        assert clone.s_degrees() == csr.s_degrees()

    def test_vertices_of_materialises_unions(self):
        graph = Graph([(0, 1), (1, 2), (0, 2), (2, 3)])
        space = CSRSpace.from_graph(graph, 2, 3)
        everything = vertices_of(space, range(len(space)))
        assert everything == {0, 1, 2, 3}
        single = vertices_of(space, [space.index_of((0, 1))])
        assert single == {0, 1}


class TestSCliqueGroups:
    @pytest.mark.parametrize("rs", INSTANCES + [(2, 4)])
    def test_groups_agree_across_representations(self, rs):
        for graph in _graphs():
            dict_space = NucleusSpace(graph, *rs)
            csr_space = CSRSpace.from_graph(graph, *rs)
            dict_groups = dict_space.s_clique_groups()
            assert dict_groups == csr_space.s_clique_groups()
            assert len(dict_groups) == dict_space.number_of_s_cliques()

    def test_each_group_is_one_s_clique(self):
        graph = complete_graph(5)
        space = NucleusSpace(graph, 2, 3)
        groups = space.s_clique_groups()
        # K5 has C(5,3) = 10 triangles, each a group of 3 edge indices
        assert len(groups) == 10
        assert all(len(g) == 3 for g in groups)
        assert all(tuple(sorted(g)) == g for g in groups)

    def test_zero_s_cliques_yield_no_groups(self):
        star = Graph([(0, i) for i in range(1, 6)])  # triangle-free
        assert NucleusSpace(star, 2, 3).s_clique_groups() == []
        assert CSRSpace.from_graph(star, 2, 3).s_clique_groups() == []


class TestIndexLookup:
    @pytest.mark.parametrize("rs", INSTANCES)
    def test_find_index_agrees_across_representations(self, rs):
        graph = powerlaw_cluster_graph(40, 4, 0.6, seed=2)
        dict_space = NucleusSpace(graph, *rs)
        csr_space = CSRSpace.from_graph(graph, *rs)
        for i, clique in enumerate(dict_space.cliques):
            shuffled = tuple(reversed(clique))
            assert find_index(dict_space, shuffled) == i
            assert find_index(csr_space, shuffled) == i

    def test_find_index_missing_returns_none(self):
        graph = Graph([(0, 1), (1, 2)])
        for space in (NucleusSpace(graph, 1, 2), CSRSpace.from_graph(graph, 1, 2)):
            assert space.find_index((99,)) is None

    def test_csr_index_of_raises_on_missing(self):
        space = CSRSpace.from_graph(Graph([(0, 1)]), 1, 2)
        assert space.index_of((1,)) == 1
        with pytest.raises(KeyError):
            space.index_of((7,))

    def test_csr_reverse_index_is_lazy_and_memoised(self):
        space = CSRSpace.from_graph(Graph([(0, 1), (1, 2)]), 1, 2)
        assert space._index is None  # nothing built until a tuple lookup
        space.find_index((1,))
        first = space._index
        assert first is not None
        space.find_index((2,))
        assert space._index is first
